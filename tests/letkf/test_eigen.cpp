#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "letkf/eigen.hpp"
#include "util/rng.hpp"

namespace bda::letkf {
namespace {

// Verify A = V diag(w) V^T and V^T V = I for a solved system.
template <typename T>
void check_decomposition(std::size_t n, const std::vector<T>& a_orig,
                         const std::vector<T>& v, const std::vector<T>& w,
                         double tol) {
  // Orthonormality.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      double dot = 0;
      for (std::size_t k = 0; k < n; ++k)
        dot += double(v[k * n + i]) * double(v[k * n + j]);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, tol) << "ortho " << i << "," << j;
    }
  // Reconstruction.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0;
      for (std::size_t k = 0; k < n; ++k)
        s += double(v[i * n + k]) * double(w[k]) * double(v[j * n + k]);
      EXPECT_NEAR(s, double(a_orig[i * n + j]), tol) << i << "," << j;
    }
}

TEST(SymEigen, DiagonalMatrix) {
  std::vector<double> a = {3, 0, 0, 0, 1, 0, 0, 0, 2};
  auto v = a;
  std::vector<double> w(3);
  ASSERT_TRUE(sym_eigen<double>(3, v.data(), w.data()));
  EXPECT_NEAR(w[0], 1.0, 1e-12);
  EXPECT_NEAR(w[1], 2.0, 1e-12);
  EXPECT_NEAR(w[2], 3.0, 1e-12);
  check_decomposition(3, a, v, w, 1e-10);
}

TEST(SymEigen, Known2x2) {
  // [[2,1],[1,2]] -> eigenvalues 1 and 3.
  std::vector<float> a = {2, 1, 1, 2};
  auto v = a;
  std::vector<float> w(2);
  ASSERT_TRUE(sym_eigen<float>(2, v.data(), w.data()));
  EXPECT_NEAR(w[0], 1.0f, 1e-5f);
  EXPECT_NEAR(w[1], 3.0f, 1e-5f);
  check_decomposition<float>(2, a, v, w, 1e-4);
}

TEST(SymEigen, OneByOne) {
  std::vector<double> a = {7.5};
  std::vector<double> w(1);
  ASSERT_TRUE(sym_eigen<double>(1, a.data(), w.data()));
  EXPECT_DOUBLE_EQ(w[0], 7.5);
  EXPECT_NEAR(std::abs(a[0]), 1.0, 1e-12);
}

TEST(SymEigen, EigenvaluesAscending) {
  Rng rng(7);
  const std::size_t n = 24;
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double x = rng.normal();
      a[i * n + j] = x;
      a[j * n + i] = x;
    }
  std::vector<double> w(n);
  ASSERT_TRUE(sym_eigen<double>(n, a.data(), w.data()));
  for (std::size_t i = 1; i < n; ++i) EXPECT_LE(w[i - 1], w[i]);
}

class SymEigenSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SymEigenSizes, RandomSymmetricDouble) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double x = rng.normal();
      a[i * n + j] = x;
      a[j * n + i] = x;
    }
  auto v = a;
  std::vector<double> w(n);
  ASSERT_TRUE(sym_eigen<double>(n, v.data(), w.data()));
  check_decomposition(n, a, v, w, 1e-8 * double(n));
}

TEST_P(SymEigenSizes, SpdLetkfShapeFloat) {
  // The LETKF matrix: (k-1)I + Y^T R^-1 Y, SPD with eigenvalues >= k-1.
  const std::size_t k = GetParam();
  const std::size_t p = 2 * k;
  Rng rng(200 + k);
  std::vector<float> y(p * k);
  for (auto& x : y) x = float(rng.normal());
  std::vector<float> a(k * k, 0.0f);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j) {
      float s = (i == j) ? float(k - 1) : 0.0f;
      for (std::size_t n = 0; n < p; ++n) s += y[n * k + i] * y[n * k + j];
      a[i * k + j] = s;
    }
  auto v = a;
  std::vector<float> w(k);
  ASSERT_TRUE(sym_eigen<float>(k, v.data(), w.data()));
  for (std::size_t i = 0; i < k; ++i)
    EXPECT_GT(w[i], 0.5f * float(k - 1));  // SPD, bounded below
  check_decomposition<float>(k, a, v, w,
                             2e-2 * double(k));  // float tolerance
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymEigenSizes,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64));

TEST(BatchedSymEigen, MatchesOneShotSolver) {
  const std::size_t n = 16;
  Rng rng(55);
  BatchedSymEigen<double> batched(n);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> a(n * n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j <= i; ++j) {
        const double x = rng.normal();
        a[i * n + j] = x;
        a[j * n + i] = x;
      }
    auto v1 = a, v2 = a;
    std::vector<double> w1(n), w2(n);
    ASSERT_TRUE(sym_eigen<double>(n, v1.data(), w1.data()));
    ASSERT_TRUE(batched.solve(v2.data(), w2.data()));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(w1[i], w2[i], 1e-10);
  }
}

TEST(BatchedSymEigen, WorkspaceReuseDoesNotLeakState) {
  // Solving problem B after problem A gives the same result as solving B
  // fresh.
  const std::size_t n = 8;
  Rng rng(66);
  auto make = [&](std::uint64_t seed) {
    Rng r(seed);
    std::vector<float> a(n * n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j <= i; ++j) {
        const float x = float(r.normal());
        a[i * n + j] = x;
        a[j * n + i] = x;
      }
    return a;
  };
  BatchedSymEigen<float> solver(n);
  auto a1 = make(1), b_after = make(2), b_fresh = make(2);
  std::vector<float> w(n), w_after(n), w_fresh(n);
  ASSERT_TRUE(solver.solve(a1.data(), w.data()));
  ASSERT_TRUE(solver.solve(b_after.data(), w_after.data()));
  BatchedSymEigen<float> fresh(n);
  ASSERT_TRUE(fresh.solve(b_fresh.data(), w_fresh.data()));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(w_after[i], w_fresh[i]);
}

TEST(Hypot2, ExtremeMagnitudesSinglePrecision) {
  // sqrt(a*a + b*b) overflows float for |a| above ~1.8e19 and flushes to
  // zero for subnormal-squared inputs; the scaled formulation must not.
  const float big = detail::hypot2(3e19f, 4e19f);
  EXPECT_TRUE(std::isfinite(big));
  EXPECT_NEAR(big, 5e19f, 5e19f * 1e-6f);

  const float tiny = detail::hypot2(3e-30f, 4e-30f);
  EXPECT_GT(tiny, 0.0f);
  EXPECT_NEAR(tiny, 5e-30f, 5e-30f * 1e-6f);

  // A subnormal paired with zero survives as itself.
  const float sub = 1e-41f;
  EXPECT_EQ(detail::hypot2(sub, 0.0f), sub);
  EXPECT_EQ(detail::hypot2(0.0f, 0.0f), 0.0f);
}

TEST(Hypot2, SignInsensitiveAndOrderInsensitive) {
  EXPECT_EQ(detail::hypot2(-3.0f, 4.0f), detail::hypot2(3.0f, 4.0f));
  EXPECT_EQ(detail::hypot2(4.0f, 3.0f), detail::hypot2(3.0f, 4.0f));
  EXPECT_NEAR(detail::hypot2(3.0, 4.0), 5.0, 1e-12);
}

TEST(Hypot2, MatchesNaiveInSafeRange) {
  Rng rng(99);
  for (int t = 0; t < 100; ++t) {
    const float a = float(rng.normal());
    const float b = float(rng.normal());
    const float naive = std::sqrt(a * a + b * b);
    EXPECT_NEAR(detail::hypot2(a, b), naive, 4e-7f * (std::abs(naive) + 1.0f));
  }
}

// Batch sizes the ISSUE singles out: 1 (degenerate), 7 (partial tile) and
// 60 (a full analysis column, multiple tiles).
class BatchedSolveSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchedSolveSizes, SolveBatchBitwiseMatchesSerialSolve) {
  const std::size_t batch = GetParam();
  const std::size_t n = 16;
  Rng rng(1234 + batch);
  // LETKF-shaped SPD batch: (n-1)I + Y^T Y per problem.
  std::vector<float> a(batch * n * n);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t p = n + 3;
    std::vector<float> y(p * n);
    for (auto& x : y) x = float(rng.normal());
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        float s = (i == j) ? float(n - 1) : 0.0f;
        for (std::size_t m = 0; m < p; ++m) s += y[m * n + i] * y[m * n + j];
        a[b * n * n + i * n + j] = s;
      }
  }
  auto a_serial = a;
  std::vector<float> w_serial(batch * n), w_batch(batch * n);
  BatchedSymEigen<float> solver(n);
  for (std::size_t b = 0; b < batch; ++b)
    ASSERT_TRUE(solver.solve(a_serial.data() + b * n * n,
                             w_serial.data() + b * n));

  std::vector<std::uint8_t> ok(batch, 0);
  BatchedSymEigen<float> batched(n);
  EXPECT_EQ(batched.solve_batch(batch, a.data(), w_batch.data(), ok.data()),
            0u);
  for (std::size_t b = 0; b < batch; ++b) EXPECT_EQ(ok[b], 1);
  // Bitwise: the batched path runs the same tred2 steps / tql2 sweeps per
  // matrix, only interleaved across the tile.
  for (std::size_t x = 0; x < batch * n; ++x)
    EXPECT_EQ(w_serial[x], w_batch[x]) << "eigenvalue " << x;
  for (std::size_t x = 0; x < batch * n * n; ++x)
    EXPECT_EQ(a_serial[x], a[x]) << "eigenvector elem " << x;
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchedSolveSizes,
                         ::testing::Values(1, 7, 60));

TEST(BatchedSymEigen, HandlesUnitSizeProblems) {
  // n = 1 needs the same up-front guard sym_eigen has: no QL sweep, the
  // eigenvector is trivially [1].
  BatchedSymEigen<double> solver(1);
  std::vector<double> a = {7.5};
  std::vector<double> w(1);
  EXPECT_TRUE(solver.solve(a.data(), w.data()));
  EXPECT_DOUBLE_EQ(w[0], 7.5);
  EXPECT_DOUBLE_EQ(a[0], 1.0);

  std::vector<double> ab = {2.0, -3.5, 0.25};
  std::vector<double> wb(3);
  std::vector<std::uint8_t> ok(3, 0);
  EXPECT_EQ(solver.solve_batch(3, ab.data(), wb.data(), ok.data()), 0u);
  EXPECT_DOUBLE_EQ(wb[0], 2.0);
  EXPECT_DOUBLE_EQ(wb[1], -3.5);
  EXPECT_DOUBLE_EQ(wb[2], 0.25);
  for (double v : ab) EXPECT_DOUBLE_EQ(v, 1.0);
  for (auto o : ok) EXPECT_EQ(o, 1);
}

TEST(BatchedSymEigen, ReportsPerProblemNonConvergence) {
  // The QL iteration cap is the deterministic fault knob: with 0 sweeps
  // allowed, any matrix that needs off-diagonal work fails, while a
  // diagonal matrix (subdiagonal exactly zero) still converges.  The
  // failure must be reported per problem, not swallowed.
  const std::size_t n = 8;
  Rng rng(4321);
  std::vector<double> a(2 * n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] = double(i + 1);  // diag
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double x = rng.normal();
      a[n * n + i * n + j] = x;
      a[n * n + j * n + i] = x;
    }
  std::vector<double> w(2 * n);
  std::vector<std::uint8_t> ok(2, 9);
  BatchedSymEigen<double> solver(n);
  solver.set_max_ql_iterations(0);
  EXPECT_EQ(solver.solve_batch(2, a.data(), w.data(), ok.data()), 1u);
  EXPECT_EQ(ok[0], 1);  // diagonal: converged without a sweep
  EXPECT_EQ(ok[1], 0);  // dense random: needs sweeps, must fail
}

TEST(SymEigen, RepeatedEigenvaluesHandled) {
  // Identity: all eigenvalues 1, any orthonormal V works.
  const std::size_t n = 6;
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] = 1.0;
  auto v = a;
  std::vector<double> w(n);
  ASSERT_TRUE(sym_eigen<double>(n, v.data(), w.data()));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(w[i], 1.0, 1e-12);
}

}  // namespace
}  // namespace bda::letkf
