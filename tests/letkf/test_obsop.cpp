#include <gtest/gtest.h>

#include <cmath>

#include "letkf/obsop.hpp"
#include "scale/reference.hpp"

namespace bda::letkf {
namespace {

using scale::Grid;
using scale::State;

Grid ogrid() { return Grid(10, 10, 10, 500.0f, 10000.0f); }

State calm_state(const Grid& g) {
  const auto ref = scale::ReferenceState::build(g, scale::stable_sounding());
  State s(g);
  s.init_from_reference(g, ref);
  return s;
}

TEST(ObsOperator, LocateFindsEnclosingCell) {
  Grid g = ogrid();
  ObsOperator op(g, 0, 0, 0);
  idx i, j, k;
  op.locate(260.0f, 1499.0f, 1500.0f, i, j, k);
  EXPECT_EQ(i, 0);
  EXPECT_EQ(j, 2);
  EXPECT_EQ(k, 1);  // level 1 spans 1000-2000 m
  // Clamped outside the domain.
  op.locate(-100.0f, 99999.0f, 50000.0f, i, j, k);
  EXPECT_EQ(i, 0);
  EXPECT_EQ(j, 9);
  EXPECT_EQ(k, 9);
}

TEST(ObsOperator, ReflectivityReflectsHydrometeors) {
  Grid g = ogrid();
  State s = calm_state(g);
  ObsOperator op(g, 0, 0, 0);
  Observation ob{ObsType::kReflectivity, 2250.0f, 2250.0f, 2500.0f, 0, 5.0f};
  EXPECT_LE(op.apply(s, ob), -19.0f);  // clear air
  idx i, j, k;
  op.locate(ob.x, ob.y, ob.z, i, j, k);
  s.rhoq[scale::QR](i, j, k) = s.dens(i, j, k) * 3e-3f;
  EXPECT_GT(op.apply(s, ob), 30.0f);   // heavy rain cell
}

TEST(ObsOperator, DopplerProjectsWindOnBeam) {
  Grid g = ogrid();
  State s = calm_state(g);
  // Uniform 10 m/s eastward wind.
  for (idx i = -Grid::kHalo; i < s.nx + Grid::kHalo; ++i)
    for (idx j = -Grid::kHalo; j < s.ny + Grid::kHalo; ++j)
      for (idx k = 0; k < s.nz; ++k)
        s.momx(i, j, k) = s.dens(i, j, k) * 10.0f;
  ObsOperator op(g, 2500.0f, 2500.0f, 0.0f);
  // Obs due east of the radar at the same height: radial = +u.
  Observation east{ObsType::kDopplerVelocity, 4750.0f, 2500.0f, 250.0f, 0,
                   3.0f};
  EXPECT_NEAR(op.apply(s, east), 10.0f, 0.5f);
  // Due north: no projection of u.
  Observation north{ObsType::kDopplerVelocity, 2500.0f, 4750.0f, 250.0f, 0,
                    3.0f};
  EXPECT_NEAR(op.apply(s, north), 0.0f, 0.5f);
  // Due west: -u.
  Observation west{ObsType::kDopplerVelocity, 250.0f, 2500.0f, 250.0f, 0,
                   3.0f};
  EXPECT_NEAR(op.apply(s, west), -10.0f, 0.5f);
}

TEST(ObsOperator, DopplerSeesFallSpeedAloft) {
  Grid g = ogrid();
  State s = calm_state(g);
  ObsOperator op(g, 2500.0f, 2500.0f, 0.0f);
  // Observation high above the radar: beam is nearly vertical, so the
  // Doppler velocity of still air with falling rain is negative (toward
  // the radar from above = downward motion).
  Observation above{ObsType::kDopplerVelocity, 2550.0f, 2550.0f, 8500.0f, 0,
                    3.0f};
  EXPECT_NEAR(op.apply(s, above), 0.0f, 1e-3f);
  idx i, j, k;
  op.locate(above.x, above.y, above.z, i, j, k);
  s.rhoq[scale::QR](i, j, k) = s.dens(i, j, k) * 3e-3f;
  EXPECT_LT(op.apply(s, above), -2.0f);
}

TEST(ObsOperator, ObservationOwnOriginOverridesOperatorSite) {
  // Multi-radar: an obs carrying its own beam origin must be projected
  // from that site, not the operator's default.
  Grid g = ogrid();
  State s = calm_state(g);
  for (idx i = -Grid::kHalo; i < s.nx + Grid::kHalo; ++i)
    for (idx j = -Grid::kHalo; j < s.ny + Grid::kHalo; ++j)
      for (idx k = 0; k < s.nz; ++k)
        s.momx(i, j, k) = s.dens(i, j, k) * 10.0f;  // eastward wind
  // Operator's default radar is WEST of the obs; the obs' own radar is
  // EAST of it: opposite radial signs.
  ObsOperator op(g, 1000.0f, 2500.0f, 50.0f);
  Observation from_default{ObsType::kDopplerVelocity, 2500.0f, 2500.0f,
                           250.0f, 0, 3.0f};
  EXPECT_GT(op.apply(s, from_default), 8.0f);  // moving away from west site
  Observation from_east = from_default;
  from_east.rx = 4500.0f;
  from_east.ry = 2500.0f;
  from_east.rz = 50.0f;
  from_east.own_origin = true;
  EXPECT_LT(op.apply(s, from_east), -8.0f);    // moving toward east site
}

TEST(ObsOperator, DopplerAtRadarSiteIsZero) {
  Grid g = ogrid();
  State s = calm_state(g);
  ObsOperator op(g, 2500.0f, 2500.0f, 100.0f);
  Observation self{ObsType::kDopplerVelocity, 2500.0f, 2500.0f, 100.0f, 0,
                   3.0f};
  EXPECT_EQ(op.apply(s, self), 0.0f);
}

}  // namespace
}  // namespace bda::letkf
