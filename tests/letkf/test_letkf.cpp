#include <gtest/gtest.h>

#include <cmath>

#include "letkf/letkf.hpp"

namespace bda::letkf {
namespace {

using scale::Grid;

Grid lgrid() { return Grid(16, 16, 8, 500.0f, 8000.0f); }

scale::ModelConfig light_config() {
  scale::ModelConfig cfg;
  cfg.dt = 0.5f;
  cfg.enable_turb = cfg.enable_pbl = cfg.enable_sfc = cfg.enable_rad = false;
  return cfg;
}

LetkfConfig fast_letkf() {
  LetkfConfig cfg;
  cfg.hloc = 1500.0f;
  cfg.vloc = 1500.0f;
  cfg.rtpp_alpha = 0.5f;
  cfg.z_min = 0.0f;
  cfg.z_max = 8000.0f;
  return cfg;
}

struct Fixture {
  Grid grid = lgrid();
  scale::Ensemble ens{grid, scale::convective_sounding(), light_config(), 12};
  ObsOperator op{grid, 4000.0f, 4000.0f, 50.0f};
  Rng rng{77};
  Fixture() {
    scale::PerturbationSpec spec;
    spec.theta_amp = 0.5f;
    spec.qv_frac = 0.05f;
    spec.zmax = 8000.0f;
    ens.perturb(spec, rng);
  }
};

TEST(Letkf, NoObservationsLeavesEnsembleUntouched) {
  Fixture f;
  const real before = f.ens.member(3).rhot(8, 8, 3);
  Letkf letkf(f.grid, fast_letkf());
  const auto stats = letkf.analyze(f.ens, {}, f.op);
  EXPECT_EQ(stats.n_obs_in, 0u);
  EXPECT_EQ(stats.n_grid_updated, 0u);
  EXPECT_EQ(f.ens.member(3).rhot(8, 8, 3), before);
}

TEST(Letkf, SingleObsUpdatesNearbyNotFar) {
  Fixture f;
  // Doppler obs near the center, value far from the background (0 wind).
  ObsVector obs;
  obs.push_back({ObsType::kDopplerVelocity, 5500.0f, 4000.0f, 1500.0f, 8.0f,
                 3.0f});
  Letkf letkf(f.grid, fast_letkf());
  const real far_before = f.ens.member(0).momx(1, 14, 2);
  const auto stats = letkf.analyze(f.ens, obs, f.op);
  EXPECT_GT(stats.n_grid_updated, 0u);
  // Far corner (> 2*hloc away horizontally) untouched.
  EXPECT_EQ(f.ens.member(0).momx(1, 14, 2), far_before);
}

TEST(Letkf, AnalysisMovesEnsembleMeanTowardObservation) {
  Fixture f;
  // Observe positive radial wind east of the radar at low elevation (beam
  // nearly horizontal, so H projects mostly onto u).  The background wind
  // is near zero with O(0.3 m/s) ensemble spread; the update direction and
  // a meaningful fraction of the innovation must follow.
  ObsVector obs;
  for (real x : {5200.0f, 5700.0f, 6200.0f})
    obs.push_back({ObsType::kDopplerVelocity, x, 4000.0f, 500.0f, 6.0f,
                   3.0f});
  Letkf letkf(f.grid, fast_letkf());

  auto mean_u_near = [&] {
    double s = 0;
    for (int m = 0; m < f.ens.size(); ++m)
      s += double(f.ens.member(m).u(11, 8, 0));  // xc(11) = 5750, zc(0) = 500
    return s / f.ens.size();
  };
  const double before = mean_u_near();
  letkf.analyze(f.ens, obs, f.op);
  const double after = mean_u_near();
  EXPECT_GT(after, before + 0.05);
}

TEST(Letkf, GrossErrorCheckRejectsOutliers) {
  Fixture f;
  ObsVector obs;
  // Doppler innovation of 50 m/s >> 15 m/s threshold.
  obs.push_back({ObsType::kDopplerVelocity, 5000.0f, 4000.0f, 1500.0f, 50.0f,
                 3.0f});
  // Reasonable obs for contrast.
  obs.push_back({ObsType::kDopplerVelocity, 5000.0f, 5000.0f, 1500.0f, 5.0f,
                 3.0f});
  Letkf letkf(f.grid, fast_letkf());
  const auto stats = letkf.analyze(f.ens, obs, f.op);
  EXPECT_EQ(stats.n_obs_in, 2u);
  EXPECT_EQ(stats.n_obs_qc, 1u);
}

TEST(Letkf, ClearAirReportsExemptFromGrossCheck) {
  Fixture f;
  // Spurious heavy rain in every member -> H(x) ~ 45 dBZ; a clear-air
  // report (-20 dBZ) has a ~65 dBZ innovation.  It must survive QC (it IS
  // the signal) while an equally large *rainy* outlier must not.
  for (int m = 0; m < f.ens.size(); ++m)
    f.ens.member(m).rhoq[scale::QR](8, 8, 1) =
        f.ens.member(m).dens(8, 8, 1) * real(2e-3 + 1e-4 * m);
  ObsVector obs;
  obs.push_back({ObsType::kReflectivity, 4250.0f, 4250.0f, 1500.0f, -20.0f,
                 5.0f});  // clear-air: exempt
  obs.push_back({ObsType::kReflectivity, 4250.0f, 4750.0f, 1500.0f, 90.0f,
                 5.0f});  // absurd rain: rejected
  Letkf letkf(f.grid, fast_letkf());
  const real qr_before = f.ens.member(0).rhoq[scale::QR](8, 8, 1);
  const auto stats = letkf.analyze(f.ens, obs, f.op);
  EXPECT_EQ(stats.n_obs_qc, 1u);  // only the 90-dBZ outlier
  // The clear-air report pulled the spurious rain down.
  EXPECT_LT(f.ens.member(0).rhoq[scale::QR](8, 8, 1), qr_before);
}

TEST(Letkf, HeightRangeRestrictsAnalysis) {
  Fixture f;
  LetkfConfig cfg = fast_letkf();
  cfg.z_min = 2000.0f;  // exclude the lowest two levels (zc = 500, 1500)
  cfg.z_max = 5000.0f;
  ObsVector obs;
  obs.push_back({ObsType::kDopplerVelocity, 4000.0f, 4000.0f, 3000.0f, 7.0f,
                 3.0f});
  Letkf letkf(f.grid, cfg);
  const real low_before = f.ens.member(2).momx(8, 8, 0);
  const real high_before = f.ens.member(2).momx(8, 8, 7);
  letkf.analyze(f.ens, obs, f.op);
  EXPECT_EQ(f.ens.member(2).momx(8, 8, 0), low_before);
  EXPECT_EQ(f.ens.member(2).momx(8, 8, 7), high_before);
}

TEST(Letkf, HydrometeorsStayNonNegative) {
  Fixture f;
  // Reflectivity obs much lower than a rainy background: the update pulls
  // hydrometeors down, clipping must keep them >= 0.
  for (int m = 0; m < f.ens.size(); ++m)
    f.ens.member(m).rhoq[scale::QR](10, 8, 2) =
        f.ens.member(m).dens(10, 8, 2) * real(1e-3 + 1e-4 * m);
  ObsVector obs;
  obs.push_back({ObsType::kReflectivity, 5250.0f, 4250.0f, 1500.0f, 22.0f,
                 5.0f});
  Letkf letkf(f.grid, fast_letkf());
  letkf.analyze(f.ens, obs, f.op);
  for (int m = 0; m < f.ens.size(); ++m)
    for (int t = 0; t < scale::kNumTracers; ++t)
      EXPECT_GE(f.ens.member(m).rhoq[t](10, 8, 2), 0.0f) << "m=" << m;
}

TEST(Letkf, MaxObsCapLimitsLocalObs) {
  Fixture f;
  LetkfConfig cfg = fast_letkf();
  cfg.max_obs_per_grid = 5;
  ObsVector obs;
  // 30 observations in a tight cluster.
  for (int n = 0; n < 30; ++n)
    obs.push_back({ObsType::kDopplerVelocity, 4000.0f + real(n % 6) * 100.0f,
                   4000.0f + real(n / 6) * 100.0f, 1500.0f, 5.0f, 3.0f});
  Letkf letkf(f.grid, cfg);
  const auto stats = letkf.analyze(f.ens, obs, f.op);
  EXPECT_GT(stats.n_grid_updated, 0u);
  EXPECT_LE(stats.mean_local_obs, 5.0 + 1e-9);
}

TEST(Letkf, MomentumUpdateCanBeDisabled) {
  Fixture f;
  LetkfConfig cfg = fast_letkf();
  cfg.update_momentum = false;
  // Give the ensemble some rain spread so reflectivity perturbations
  // exist; the ensemble-mean equivalent is ~47 dBZ, so observe 45 dBZ
  // (inside the 10-dBZ gross-error gate).
  ObsVector obs;
  obs.push_back({ObsType::kReflectivity, 4250.0f, 4250.0f, 1500.0f, 45.0f,
                 5.0f});
  for (int m = 0; m < f.ens.size(); ++m)
    f.ens.member(m).rhoq[scale::QR](8, 8, 1) =
        f.ens.member(m).dens(8, 8, 1) * real(5e-4 * (m + 1));
  Letkf letkf(f.grid, cfg);
  const real u_before = f.ens.member(1).momx(8, 8, 1);
  letkf.analyze(f.ens, obs, f.op);
  EXPECT_EQ(f.ens.member(1).momx(8, 8, 1), u_before);
  // But hydrometeors did change.
  EXPECT_NE(f.ens.member(1).rhoq[scale::QR](8, 8, 1),
            f.ens.member(1).dens(8, 8, 1) * real(5e-4 * 2));
}

TEST(Letkf, EigensolverFailureIsCountedAndSkipsUpdate) {
  // Regression: non-convergence in letkf_weights used to be silently
  // swallowed (the level was skipped with no trace in AnalysisStats).
  // eig_max_iters = 0 is the deterministic fault knob: any gridpoint whose
  // ensemble-space matrix needs QL sweeps fails to converge.
  Fixture f;
  LetkfConfig cfg = fast_letkf();
  cfg.eig_max_iters = 0;
  ObsVector obs;
  for (real x : {4200.0f, 4700.0f, 5200.0f})
    obs.push_back({ObsType::kDopplerVelocity, x, 4000.0f, 1500.0f, 6.0f,
                   3.0f});
  Letkf letkf(f.grid, cfg);
  util::Metrics metrics;
  letkf.set_metrics(&metrics);
  const real before = f.ens.member(0).momx(8, 8, 1);
  const auto stats = letkf.analyze(f.ens, obs, f.op);
  EXPECT_GT(stats.n_eig_fail, 0u);
  EXPECT_EQ(metrics.counter("letkf.eig_fail"), stats.n_eig_fail);
  // Failed levels leave the background untouched rather than applying a
  // garbage weight matrix.
  if (stats.n_grid_updated == 0) {
    EXPECT_EQ(f.ens.member(0).momx(8, 8, 1), before);
  }
}

TEST(Letkf, BatchAndReuseStatsArePopulated) {
  Fixture f;
  ObsVector obs;
  for (real x : {4200.0f, 4700.0f, 5200.0f})
    obs.push_back({ObsType::kDopplerVelocity, x, 4000.0f, 1500.0f, 6.0f,
                   3.0f});
  Letkf letkf(f.grid, fast_letkf());
  util::Metrics metrics;
  letkf.set_metrics(&metrics);
  const auto stats = letkf.analyze(f.ens, obs, f.op);
  ASSERT_GT(stats.n_grid_updated, 0u);
  EXPECT_EQ(stats.n_eig_fail, 0u);
  // Every analyzed level either solved a fresh weight matrix or reused a
  // cached one, and every column with work ran at least one batch.
  EXPECT_GT(stats.n_weight_solved, 0u);
  EXPECT_GT(stats.n_eig_batches, 0u);
  EXPECT_GE(stats.n_grid_updated,
            stats.n_eig_batches);  // >= one level per batched column
  EXPECT_EQ(metrics.counter("letkf.weight_cache_miss"),
            stats.n_weight_solved);
  EXPECT_EQ(metrics.counter("letkf.weight_cache_hit"),
            stats.n_weight_reuse);
  EXPECT_EQ(metrics.counter("letkf.eig_batches"), stats.n_eig_batches);
}

TEST(Letkf, StatsReportInnovationMagnitude) {
  Fixture f;
  ObsVector obs;
  obs.push_back({ObsType::kDopplerVelocity, 4500.0f, 4000.0f, 1500.0f, 4.0f,
                 3.0f});
  Letkf letkf(f.grid, fast_letkf());
  const auto stats = letkf.analyze(f.ens, obs, f.op);
  EXPECT_GT(stats.mean_abs_innovation, 1.0);  // background is ~calm
  EXPECT_LT(stats.mean_abs_innovation, 10.0);
}

}  // namespace
}  // namespace bda::letkf
