#include <gtest/gtest.h>

#include "letkf/adaptive_inflation.hpp"

namespace bda::letkf {
namespace {

InnovationMoments moments(double d2, double r, double hpbh,
                          std::size_t n = 100) {
  InnovationMoments m;
  m.mean_innov2 = d2;
  m.mean_obs_var = r;
  m.mean_ens_var = hpbh;
  m.n_obs = n;
  return m;
}

TEST(AdaptiveInflation, ConsistentStatisticsGiveUnity) {
  // E[d^2] = HPbH + R exactly -> alpha = 1.
  EXPECT_DOUBLE_EQ(AdaptiveInflation::estimate(moments(3.0, 1.0, 2.0)), 1.0);
}

TEST(AdaptiveInflation, UnderdispersionInflates) {
  // Innovations larger than the budget -> alpha > 1.
  EXPECT_GT(AdaptiveInflation::estimate(moments(6.0, 1.0, 2.0)), 2.0);
}

TEST(AdaptiveInflation, OverdispersionDeflates) {
  EXPECT_LT(AdaptiveInflation::estimate(moments(2.0, 1.0, 2.0)), 1.0);
}

TEST(AdaptiveInflation, EmptyOrDegenerateSampleIsNeutral) {
  EXPECT_DOUBLE_EQ(AdaptiveInflation::estimate(moments(5.0, 1.0, 2.0, 0)),
                   1.0);
  EXPECT_DOUBLE_EQ(AdaptiveInflation::estimate(moments(5.0, 1.0, 0.0)), 1.0);
}

TEST(AdaptiveInflation, SmoothingDampsSingleCycleJumps) {
  AdaptiveInflation infl(1.0f, 0.3f);
  infl.update(moments(9.0, 1.0, 2.0));  // instantaneous alpha = 4
  // One update moves 30% of the way: 0.7*1 + 0.3*4 = 1.9, far below 4.
  EXPECT_FLOAT_EQ(infl.rho(), 1.9f);
}

TEST(AdaptiveInflation, ConvergesUnderRepeatedEvidence) {
  AdaptiveInflation infl(1.0f, 0.3f, 0.9f, 3.0f);
  for (int c = 0; c < 50; ++c) infl.update(moments(5.0, 1.0, 2.0));
  // alpha = (5-1)/2 = 2: the smoothed value approaches it.
  EXPECT_NEAR(infl.rho(), 2.0f, 0.05f);
}

TEST(AdaptiveInflation, ClampsToConfiguredRange) {
  AdaptiveInflation infl(1.0f, 1.0f, 0.9f, 3.0f);
  infl.update(moments(100.0, 1.0, 1.0));  // alpha = 99
  EXPECT_FLOAT_EQ(infl.rho(), 3.0f);
  infl.update(moments(0.1, 1.0, 10.0));   // alpha < 0
  EXPECT_FLOAT_EQ(infl.rho(), 0.9f);
}

TEST(AdaptiveInflation, RawEstimateCanBeNegativeByContract) {
  // Desroziers ratio with innovations far below the error budget:
  // (0.1 - 1.0) / 10.0 = -0.09.  estimate() is documented to return the
  // raw, unclamped ratio — callers must not apply it directly.
  EXPECT_DOUBLE_EQ(AdaptiveInflation::estimate(moments(0.1, 1.0, 10.0)),
                   -0.09);
}

TEST(AdaptiveInflation, FlooredEstimateNeverBelowRhoMin) {
  AdaptiveInflation infl(1.0f, 0.3f, 0.9f, 3.0f);
  EXPECT_DOUBLE_EQ(infl.estimate_floored(moments(0.1, 1.0, 10.0)),
                   double(0.9f));
  // A sane estimate passes through unfloored.
  EXPECT_DOUBLE_EQ(infl.estimate_floored(moments(5.0, 1.0, 2.0)), 2.0);
}

TEST(AdaptiveInflation, NegativeEstimateIsFlooredBeforeBlending) {
  // Regression: the negative instantaneous ratio used to enter the temporal
  // blend raw (0.7*1 + 0.3*(-0.09) = 0.673) and only the final clamp saved
  // the stored rho.  With clamp-before-blend the garbage cycle contributes
  // rho_min instead: 0.7*1 + 0.3*0.9 = 0.97.
  AdaptiveInflation infl(1.0f, 0.3f, 0.9f, 3.0f);
  infl.update(moments(0.1, 1.0, 10.0));
  EXPECT_FLOAT_EQ(infl.rho(), 0.97f);
}

}  // namespace
}  // namespace bda::letkf
