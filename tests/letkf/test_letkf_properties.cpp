// Parameterized LETKF property sweeps: the Kalman-filter equivalence and
// spread behaviour must hold across ensemble sizes and observation loads,
// not just at the sizes the other tests pick.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "letkf/letkf_core.hpp"
#include "letkf/localization.hpp"
#include "util/rng.hpp"

namespace bda::letkf {
namespace {

std::vector<double> exact_ensemble(std::size_t k, double mean, double sd,
                                   Rng& rng) {
  std::vector<double> z(k);
  double zm = 0;
  for (auto& v : z) {
    v = rng.normal();
    zm += v;
  }
  zm /= double(k);
  double s2 = 0;
  for (auto& v : z) {
    v -= zm;
    s2 += v * v;
  }
  const double scale = sd / std::sqrt(s2 / double(k - 1));
  std::vector<double> x(k);
  for (std::size_t m = 0; m < k; ++m) x[m] = mean + scale * z[m];
  return x;
}

struct Moments {
  double mean, var;
};
Moments moments(const std::vector<double>& x) {
  double m = 0;
  for (double v : x) m += v;
  m /= double(x.size());
  double s2 = 0;
  for (double v : x) s2 += (v - m) * (v - m);
  return {m, s2 / double(x.size() - 1)};
}

std::vector<double> apply_weights(const std::vector<double>& xb,
                                  const std::vector<double>& W) {
  const std::size_t k = xb.size();
  const auto mb = moments(xb);
  std::vector<double> xa(k);
  for (std::size_t m = 0; m < k; ++m) {
    double s = mb.mean;
    for (std::size_t l = 0; l < k; ++l)
      s += (xb[l] - mb.mean) * W[l * k + m];
    xa[m] = s;
  }
  return xa;
}

class KfEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KfEquivalence, ScalarAnalysisMatchesKalmanAtAnyEnsembleSize) {
  const std::size_t k = GetParam();
  Rng rng(1000 + k);
  const double xb_mean = 1.0, xb_sd = 1.7, yo = 4.0, r_sd = 1.3;
  const auto xb = exact_ensemble(k, xb_mean, xb_sd, rng);
  const auto mb = moments(xb);
  std::vector<double> Y(k), d = {yo - mb.mean},
                      rinv = {1.0 / (r_sd * r_sd)};
  for (std::size_t m = 0; m < k; ++m) Y[m] = xb[m] - mb.mean;
  LetkfWorkspace<double> ws(k);
  std::vector<double> W(k * k);
  ASSERT_TRUE(letkf_weights<double>(k, 1, Y.data(), d.data(), rinv.data(),
                                    0.0, 1.0, ws, W.data()));
  const auto ma = moments(apply_weights(xb, W));
  const double g = xb_sd * xb_sd / (xb_sd * xb_sd + r_sd * r_sd);
  EXPECT_NEAR(ma.mean, xb_mean + g * (yo - xb_mean), 1e-6) << "k=" << k;
  EXPECT_NEAR(ma.var, (1.0 - g) * xb_sd * xb_sd, 1e-5) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(EnsembleSizes, KfEquivalence,
                         ::testing::Values(5, 10, 20, 50, 100, 200));

class ObsLoad : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ObsLoad, VarianceFallsMonotonicallyWithObsCount) {
  // p identical independent obs of the same quantity = one obs with R/p:
  // the analysis variance must match the closed form at every p.
  const std::size_t p = GetParam();
  const std::size_t k = 60;
  Rng rng(7);
  const auto xb = exact_ensemble(k, 0.0, 1.0, rng);
  const auto mb = moments(xb);
  std::vector<double> Y(p * k), d(p, 1.0), rinv(p, 1.0);
  for (std::size_t n = 0; n < p; ++n)
    for (std::size_t m = 0; m < k; ++m) Y[n * k + m] = xb[m] - mb.mean;
  LetkfWorkspace<double> ws(k);
  std::vector<double> W(k * k);
  ASSERT_TRUE(letkf_weights<double>(k, p, Y.data(), d.data(), rinv.data(),
                                    0.0, 1.0, ws, W.data()));
  const auto ma = moments(apply_weights(xb, W));
  EXPECT_NEAR(ma.var, 1.0 / (1.0 + double(p)), 1e-6) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(ObsCounts, ObsLoad,
                         ::testing::Values(1, 2, 4, 8, 16, 64));

class RtppSweep : public ::testing::TestWithParam<double> {};

TEST_P(RtppSweep, SpreadInterpolatesBetweenAnalysisAndPrior) {
  const double alpha = GetParam();
  const std::size_t k = 80;
  Rng rng(9);
  const auto xb = exact_ensemble(k, 0.0, 1.0, rng);
  const auto mb = moments(xb);
  std::vector<double> Y(k), d = {1.0}, rinv = {4.0};
  for (std::size_t m = 0; m < k; ++m) Y[m] = xb[m] - mb.mean;
  LetkfWorkspace<double> ws(k);
  std::vector<double> W(k * k);
  ASSERT_TRUE(letkf_weights<double>(k, 1, Y.data(), d.data(), rinv.data(),
                                    alpha, 1.0, ws, W.data()));
  const double var_a = moments(apply_weights(xb, W)).var;
  // Pure analysis sd: sqrt(1/(1+4)); RTPP blends standard deviations:
  // sd = alpha*sd_b + (1-alpha)*sd_a.
  const double sd_expected =
      alpha * 1.0 + (1.0 - alpha) * std::sqrt(1.0 / 5.0);
  EXPECT_NEAR(std::sqrt(var_a), sd_expected, 1e-6) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, RtppSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.95, 1.0));

TEST(LocalizationWeighting, IncrementShrinksMonotonicallyWithDistance) {
  // The same obs at growing GC distance must pull the state monotonically
  // less (R-localization divides rinv by the GC weight).
  const std::size_t k = 40;
  Rng rng(11);
  const auto xb = exact_ensemble(k, 0.0, 1.0, rng);
  const auto mb = moments(xb);
  std::vector<double> Y(k);
  for (std::size_t m = 0; m < k; ++m) Y[m] = xb[m] - mb.mean;
  std::vector<double> d = {2.0};
  LetkfWorkspace<double> ws(k);
  std::vector<double> W(k * k);
  double prev_incr = 1e9;
  for (real r : {0.0f, 0.5f, 1.0f, 1.5f, 1.9f}) {
    std::vector<double> rinv = {double(gaspari_cohn(r)) / 1.0};
    ASSERT_TRUE(letkf_weights<double>(k, 1, Y.data(), d.data(), rinv.data(),
                                      0.0, 1.0, ws, W.data()));
    const double incr = moments(apply_weights(xb, W)).mean;
    EXPECT_GE(incr, 0.0);
    EXPECT_LE(incr, prev_incr + 1e-12) << "r=" << r;
    prev_incr = incr;
  }
  EXPECT_LT(prev_incr, 0.05);  // nearly no pull at the support edge
}

}  // namespace
}  // namespace bda::letkf
