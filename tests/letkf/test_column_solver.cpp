#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstring>
#include <vector>

#include "letkf/column_solver.hpp"
#include "letkf/letkf_core.hpp"
#include "util/rng.hpp"

namespace bda::letkf {
namespace {

// One synthetic "level": p local obs with ids, perturbations Y (p x k),
// innovations d and localized inverse variances rinv.
struct Level {
  std::vector<std::size_t> ids;
  std::vector<float> y, d, rinv;
  std::size_t p() const { return ids.size(); }
};

Level make_level(std::size_t k, std::size_t p, std::uint64_t seed,
                 std::size_t id0 = 0) {
  Rng rng(seed);
  Level lv;
  lv.ids.resize(p);
  lv.y.resize(p * k);
  lv.d.resize(p);
  lv.rinv.resize(p);
  for (std::size_t n = 0; n < p; ++n) {
    lv.ids[n] = id0 + n;
    lv.d[n] = float(rng.normal());
    lv.rinv[n] = 0.5f + float(std::abs(rng.normal()));
    for (std::size_t m = 0; m < k; ++m)
      lv.y[n * k + m] = float(rng.normal());
  }
  return lv;
}

constexpr float kAlpha = 0.95f;
constexpr float kRho = 1.0f;

TEST(ColumnWeightSolver, IdenticalSignaturesShareOneSlot) {
  const std::size_t k = 12, p = 9;
  const Level lv = make_level(k, p, 42);
  ColumnWeightSolver<float> solver(k, 8, kAlpha, kRho);

  solver.begin_column();
  const std::size_t s0 = solver.add_level(p, lv.ids.data(), lv.rinv.data(),
                                          lv.y.data(), lv.d.data());
  // Second level with the byte-identical signature: must hit without
  // touching Y/d (pass nullptrs through lookup to prove they're unused).
  const std::size_t s1 = solver.lookup(p, lv.ids.data(), lv.rinv.data());
  ASSERT_NE(s1, ColumnWeightSolver<float>::npos);
  EXPECT_EQ(s0, s1);
  EXPECT_EQ(solver.n_levels(), 2u);
  EXPECT_EQ(solver.n_unique(), 1u);
  EXPECT_EQ(solver.cache_hits(), 1u);
  EXPECT_EQ(solver.cache_misses(), 1u);

  solver.solve();
  EXPECT_EQ(solver.batches(), 1u);
  ASSERT_TRUE(solver.converged(s0));
  // Shared slot => literally the same weight matrix storage.
  EXPECT_EQ(solver.weights(s0), solver.weights(s1));
}

TEST(ColumnWeightSolver, MatchesPerLevelLetkfWeightsBitwise) {
  // A column mixing shared and distinct signatures; every level's weights
  // must equal a standalone letkf_weights call bit for bit.
  const std::size_t k = 16;
  std::vector<Level> levels;
  levels.push_back(make_level(k, 7, 1));
  levels.push_back(make_level(k, 11, 2, 100));
  levels.push_back(levels[0]);  // exact repeat of level 0
  levels.push_back(make_level(k, 7, 3, 50));
  levels.push_back(levels[1]);  // exact repeat of level 1

  ColumnWeightSolver<float> solver(k, levels.size(), kAlpha, kRho);
  solver.begin_column();
  std::vector<std::size_t> slots;
  for (const auto& lv : levels)
    slots.push_back(solver.add_level(lv.p(), lv.ids.data(), lv.rinv.data(),
                                     lv.y.data(), lv.d.data()));
  EXPECT_EQ(solver.n_unique(), 3u);
  EXPECT_EQ(solver.cache_hits(), 2u);
  solver.solve();

  LetkfWorkspace<float> ws(k);
  std::vector<float> w_ref(k * k);
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const auto& lv = levels[l];
    ASSERT_TRUE(solver.converged(slots[l])) << "level " << l;
    ASSERT_TRUE(letkf_weights(k, lv.p(), lv.y.data(), lv.d.data(),
                              lv.rinv.data(), kAlpha, kRho, ws,
                              w_ref.data()));
    const float* w = solver.weights(slots[l]);
    for (std::size_t x = 0; x < k * k; ++x)
      EXPECT_EQ(w[x], w_ref[x]) << "level " << l << " elem " << x;
  }
}

TEST(ColumnWeightSolver, LastUlpRinvDifferenceDefeatsReuse) {
  const std::size_t k = 8, p = 5;
  const Level lv = make_level(k, p, 7);
  auto rinv2 = lv.rinv;
  rinv2[p - 1] = std::nextafter(rinv2[p - 1], 2.0f * rinv2[p - 1]);

  ColumnWeightSolver<float> solver(k, 4, kAlpha, kRho);
  solver.begin_column();
  const std::size_t s0 = solver.add_level(p, lv.ids.data(), lv.rinv.data(),
                                          lv.y.data(), lv.d.data());
  EXPECT_EQ(solver.lookup(p, lv.ids.data(), rinv2.data()),
            ColumnWeightSolver<float>::npos);
  const std::size_t s1 = solver.add_level(p, lv.ids.data(), rinv2.data(),
                                          lv.y.data(), lv.d.data());
  EXPECT_NE(s0, s1);
  EXPECT_EQ(solver.n_unique(), 2u);
  EXPECT_EQ(solver.cache_hits(), 0u);
}

TEST(ColumnWeightSolver, DifferentObsSelectionDefeatsReuse) {
  const std::size_t k = 8, p = 5;
  const Level lv = make_level(k, p, 11);
  auto ids2 = lv.ids;
  ids2[0] += 1000;  // same count & rinv bits, different ranked obs

  ColumnWeightSolver<float> solver(k, 4, kAlpha, kRho);
  solver.begin_column();
  solver.add_level(p, lv.ids.data(), lv.rinv.data(), lv.y.data(),
                   lv.d.data());
  EXPECT_EQ(solver.lookup(p, ids2.data(), lv.rinv.data()),
            ColumnWeightSolver<float>::npos);
}

TEST(ColumnWeightSolver, NonConvergenceIsCountedNotSwallowed) {
  const std::size_t k = 10, p = 8;
  const Level lv = make_level(k, p, 5);
  // max_ql_iters = 0: any level needing QL sweeps fails deterministically.
  ColumnWeightSolver<float> solver(k, 4, kAlpha, kRho, /*max_ql_iters=*/0);
  solver.begin_column();
  const std::size_t s = solver.add_level(p, lv.ids.data(), lv.rinv.data(),
                                         lv.y.data(), lv.d.data());
  solver.solve();
  EXPECT_FALSE(solver.converged(s));
  EXPECT_EQ(solver.eig_failures(), 1u);
  EXPECT_EQ(solver.batches(), 1u);
}

TEST(ColumnWeightSolver, BeginColumnResetsCacheButKeepsLifetimeCounters) {
  const std::size_t k = 8, p = 5;
  const Level lv = make_level(k, p, 13);
  ColumnWeightSolver<float> solver(k, 4, kAlpha, kRho);

  solver.begin_column();
  solver.add_level(p, lv.ids.data(), lv.rinv.data(), lv.y.data(),
                   lv.d.data());
  solver.lookup(p, lv.ids.data(), lv.rinv.data());
  solver.solve();

  // New column: the same signature must MISS (cache is per-column) while
  // hits/misses/batches accumulate across columns.
  solver.begin_column();
  EXPECT_EQ(solver.n_levels(), 0u);
  EXPECT_EQ(solver.n_unique(), 0u);
  EXPECT_EQ(solver.lookup(p, lv.ids.data(), lv.rinv.data()),
            ColumnWeightSolver<float>::npos);
  solver.add_level(p, lv.ids.data(), lv.rinv.data(), lv.y.data(),
                   lv.d.data());
  solver.solve();
  EXPECT_EQ(solver.cache_hits(), 1u);
  EXPECT_EQ(solver.cache_misses(), 2u);
  EXPECT_EQ(solver.batches(), 2u);
}

}  // namespace
}  // namespace bda::letkf
