#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "letkf/letkf_core.hpp"
#include "util/rng.hpp"

namespace bda::letkf {
namespace {

// Construct an ensemble of scalars with *exact* sample mean and variance so
// the Kalman-filter comparison has no sampling error: x_m = mean + sd * z_m
// where z has exact zero mean, unit sample variance.
std::vector<double> exact_ensemble(std::size_t k, double mean, double sd,
                                   Rng& rng) {
  std::vector<double> z(k);
  double zm = 0;
  for (auto& v : z) {
    v = rng.normal();
    zm += v;
  }
  zm /= double(k);
  double s2 = 0;
  for (auto& v : z) {
    v -= zm;
    s2 += v * v;
  }
  const double scale = sd / std::sqrt(s2 / double(k - 1));
  std::vector<double> x(k);
  for (std::size_t m = 0; m < k; ++m) x[m] = mean + scale * z[m];
  return x;
}

struct Moments {
  double mean, var;
};
Moments moments(const std::vector<double>& x) {
  double m = 0;
  for (double v : x) m += v;
  m /= double(x.size());
  double s2 = 0;
  for (double v : x) s2 += (v - m) * (v - m);
  return {m, s2 / double(x.size() - 1)};
}

// Apply the weight matrix to a state ensemble (as the driver does).
std::vector<double> apply_weights(const std::vector<double>& xb,
                                  const std::vector<double>& W) {
  const std::size_t k = xb.size();
  double mean = 0;
  for (double v : xb) mean += v;
  mean /= double(k);
  std::vector<double> pert(k);
  for (std::size_t m = 0; m < k; ++m) pert[m] = xb[m] - mean;
  std::vector<double> xa(k);
  for (std::size_t m = 0; m < k; ++m) {
    double s = mean;
    for (std::size_t l = 0; l < k; ++l) s += pert[l] * W[l * k + m];
    xa[m] = s;
  }
  return xa;
}

TEST(LetkfCore, ScalarMatchesKalmanFilter) {
  // One state variable observed directly: the LETKF analysis mean and
  // variance must reproduce the exact Kalman filter.
  const std::size_t k = 200;
  Rng rng(2021);
  const double xb_mean = 5.0, xb_sd = 2.0;
  const double yo = 8.0, r_sd = 1.0;

  const auto xb = exact_ensemble(k, xb_mean, xb_sd, rng);
  // Y = H X' = X' (H identity), row-major p x k with p = 1.
  const auto mb = moments(xb);
  std::vector<double> Y(k);
  for (std::size_t m = 0; m < k; ++m) Y[m] = xb[m] - mb.mean;
  std::vector<double> d = {yo - mb.mean};
  std::vector<double> rinv = {1.0 / (r_sd * r_sd)};

  LetkfWorkspace<double> ws(k);
  std::vector<double> W(k * k);
  ASSERT_TRUE(letkf_weights<double>(k, 1, Y.data(), d.data(), rinv.data(),
                                    /*rtpp=*/0.0, /*rho=*/1.0, ws, W.data()));
  const auto xa = apply_weights(xb, W);
  const auto ma = moments(xa);

  // Kalman: gain = s_b^2 / (s_b^2 + r^2); xa = xb + g (yo - xb);
  // s_a^2 = (1 - g) s_b^2.
  const double g = xb_sd * xb_sd / (xb_sd * xb_sd + r_sd * r_sd);
  EXPECT_NEAR(ma.mean, xb_mean + g * (yo - xb_mean), 1e-6);
  EXPECT_NEAR(ma.var, (1.0 - g) * xb_sd * xb_sd, 1e-5);
}

TEST(LetkfCore, MultipleObsReduceVarianceFurther) {
  const std::size_t k = 100;
  Rng rng(31);
  const auto xb = exact_ensemble(k, 0.0, 1.0, rng);
  const auto mb = moments(xb);

  auto analyze = [&](std::size_t p) {
    std::vector<double> Y(p * k), d(p), rinv(p, 1.0);
    for (std::size_t n = 0; n < p; ++n) {
      for (std::size_t m = 0; m < k; ++m) Y[n * k + m] = xb[m] - mb.mean;
      d[n] = 2.0 - mb.mean;
    }
    LetkfWorkspace<double> ws(k);
    std::vector<double> W(k * k);
    EXPECT_TRUE(letkf_weights<double>(k, p, Y.data(), d.data(), rinv.data(),
                                      0.0, 1.0, ws, W.data()));
    return moments(apply_weights(xb, W));
  };
  const auto one = analyze(1);
  const auto four = analyze(4);
  EXPECT_LT(four.var, one.var);
  // Four identical obs of the same thing = one obs with r/4 variance.
  const double expected = 1.0 / (1.0 + 4.0);
  EXPECT_NEAR(four.var, expected, 1e-5);
  EXPECT_GT(four.mean, one.mean);  // pulled harder toward yo = 2
}

TEST(LetkfCore, AnalysisSpreadNeverExceedsBackground) {
  const std::size_t k = 64;
  Rng rng(32);
  for (int trial = 0; trial < 10; ++trial) {
    const auto xb = exact_ensemble(k, rng.normal(), 1.5, rng);
    const auto mb = moments(xb);
    const std::size_t p = 3;
    std::vector<double> Y(p * k), d(p), rinv(p);
    for (std::size_t n = 0; n < p; ++n) {
      for (std::size_t m = 0; m < k; ++m)
        Y[n * k + m] = (xb[m] - mb.mean) * (0.5 + 0.5 * double(n));
      d[n] = rng.normal();
      rinv[n] = 1.0 / (0.5 + rng.uniform());
    }
    LetkfWorkspace<double> ws(k);
    std::vector<double> W(k * k);
    ASSERT_TRUE(letkf_weights<double>(k, p, Y.data(), d.data(), rinv.data(),
                                      0.0, 1.0, ws, W.data()));
    const auto ma = moments(apply_weights(xb, W));
    EXPECT_LE(ma.var, moments(xb).var * (1.0 + 1e-9));
  }
}

TEST(LetkfCore, RtppOneRestoresPriorPerturbations) {
  // alpha = 1: analysis perturbations = background perturbations exactly;
  // only the mean moves.
  const std::size_t k = 50;
  Rng rng(33);
  const auto xb = exact_ensemble(k, 1.0, 2.0, rng);
  const auto mb = moments(xb);
  std::vector<double> Y(k), d = {3.0}, rinv = {1.0};
  for (std::size_t m = 0; m < k; ++m) Y[m] = xb[m] - mb.mean;
  LetkfWorkspace<double> ws(k);
  std::vector<double> W(k * k);
  ASSERT_TRUE(letkf_weights<double>(k, 1, Y.data(), d.data(), rinv.data(),
                                    1.0, 1.0, ws, W.data()));
  const auto xa = apply_weights(xb, W);
  const auto ma = moments(xa);
  EXPECT_NEAR(ma.var, mb.var, 1e-9);   // spread preserved
  EXPECT_GT(ma.mean, mb.mean);         // mean still updated
  // Member-wise: perturbation m unchanged.
  for (std::size_t m = 0; m < k; ++m)
    EXPECT_NEAR(xa[m] - ma.mean, xb[m] - mb.mean, 1e-8);
}

TEST(LetkfCore, PaperRtppDampsSpreadReduction) {
  // alpha = 0.95 (Table 2): the analysis spread stays close to the prior
  // spread even with strong observations.
  const std::size_t k = 50;
  Rng rng(34);
  const auto xb = exact_ensemble(k, 0.0, 1.0, rng);
  const auto mb = moments(xb);
  std::vector<double> Y(k), d = {0.5}, rinv = {100.0};  // sharp obs
  for (std::size_t m = 0; m < k; ++m) Y[m] = xb[m] - mb.mean;
  LetkfWorkspace<double> ws(k);
  std::vector<double> W0(k * k), W95(k * k);
  ASSERT_TRUE(letkf_weights<double>(k, 1, Y.data(), d.data(), rinv.data(),
                                    0.0, 1.0, ws, W0.data()));
  ASSERT_TRUE(letkf_weights<double>(k, 1, Y.data(), d.data(), rinv.data(),
                                    0.95, 1.0, ws, W95.data()));
  const auto v0 = moments(apply_weights(xb, W0)).var;
  const auto v95 = moments(apply_weights(xb, W95)).var;
  EXPECT_LT(v0, 0.1);           // raw LETKF collapses against rinv=100
  EXPECT_GT(v95, 0.8);          // RTPP keeps most of the prior spread
  EXPECT_LE(v95, moments(xb).var + 1e-9);
}

TEST(LetkfCore, InflationIncreasesWeightOnObservations) {
  const std::size_t k = 40;
  Rng rng(35);
  const auto xb = exact_ensemble(k, 0.0, 1.0, rng);
  const auto mb = moments(xb);
  std::vector<double> Y(k), d = {2.0}, rinv = {1.0};
  for (std::size_t m = 0; m < k; ++m) Y[m] = xb[m] - mb.mean;
  LetkfWorkspace<double> ws(k);
  std::vector<double> W1(k * k), W2(k * k);
  ASSERT_TRUE(letkf_weights<double>(k, 1, Y.data(), d.data(), rinv.data(),
                                    0.0, 1.0, ws, W1.data()));
  ASSERT_TRUE(letkf_weights<double>(k, 1, Y.data(), d.data(), rinv.data(),
                                    0.0, 1.5, ws, W2.data()));
  const double mean1 = moments(apply_weights(xb, W1)).mean;
  const double mean2 = moments(apply_weights(xb, W2)).mean;
  // rho > 1 inflates background variance -> analysis trusts obs more.
  EXPECT_GT(mean2, mean1);
}

TEST(LetkfCore, UncorrelatedVariableUnchanged) {
  // Two-variable state; variable 2's ensemble perturbations are orthogonal
  // to the observed variable's -> its analysis equals its background.
  const std::size_t k = 4;
  // Hand-built perturbations: var1 = [1,-1,1,-1], var2 = [1,1,-1,-1];
  // these are orthogonal in ensemble space.
  std::vector<double> x1 = {1, -1, 1, -1}, x2 = {1, 1, -1, -1};
  std::vector<double> Y(k);
  for (std::size_t m = 0; m < k; ++m) Y[m] = x1[m];  // observe var1
  std::vector<double> d = {0.7}, rinv = {2.0};
  LetkfWorkspace<double> ws(k);
  std::vector<double> W(k * k);
  ASSERT_TRUE(letkf_weights<double>(k, 1, Y.data(), d.data(), rinv.data(),
                                    0.0, 1.0, ws, W.data()));
  const auto xa1 = apply_weights(x1, W);
  const auto xa2 = apply_weights(x2, W);
  // var1 moved toward the innovation; var2 mean unchanged.
  EXPECT_GT(moments(xa1).mean, 0.0);
  EXPECT_NEAR(moments(xa2).mean, 0.0, 1e-9);
  EXPECT_NEAR(moments(xa2).var, moments(x2).var, 1e-7);
}

TEST(LetkfCore, SingleFloatPrecisionStable) {
  // Same scalar KF check in float (the paper's production precision).
  const std::size_t k = 100;
  Rng rng(36);
  std::vector<float> xb(k);
  {
    const auto xd = exact_ensemble(k, 5.0, 2.0, rng);
    for (std::size_t m = 0; m < k; ++m) xb[m] = float(xd[m]);
  }
  double mean = 0;
  for (float v : xb) mean += double(v);
  mean /= double(k);
  std::vector<float> Y(k);
  for (std::size_t m = 0; m < k; ++m) Y[m] = float(double(xb[m]) - mean);
  std::vector<float> d = {float(8.0 - mean)}, rinv = {1.0f};
  LetkfWorkspace<float> ws(k);
  std::vector<float> W(k * k);
  ASSERT_TRUE(letkf_weights<float>(k, 1, Y.data(), d.data(), rinv.data(),
                                   0.0f, 1.0f, ws, W.data()));
  std::vector<double> xad(k);
  {
    std::vector<double> xbd(xb.begin(), xb.end());
    std::vector<double> Wd(W.begin(), W.end());
    xad = apply_weights(xbd, Wd);
  }
  const double g = 4.0 / 5.0;
  EXPECT_NEAR(moments(xad).mean, 5.0 + g * 3.0, 2e-3);
}

}  // namespace
}  // namespace bda::letkf
